package gap

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// SSSP implements engines.Instance with delta-stepping (Meyer &
// Sanders), the algorithm of the GAP suite: tentative distances live
// in an atomically CAS-min'ed float64 array; vertices are binned into
// buckets of width Δ; each bucket is settled by repeated parallel
// relaxation passes of its light edges, then heavy edges are relaxed
// once.
func (inst *Instance) SSSP(root graph.VID) (*engines.SSSPResult, error) {
	inst.ensureBuilt()
	if inst.out.Weights == nil {
		return nil, engines.ErrUnsupported // unweighted input, as with cit-Patents in Table I
	}
	if inst.eng.SyncSSSP {
		return inst.ssspSync(root)
	}
	n := inst.n
	delta := inst.eng.Delta
	if delta <= 0 {
		delta = DefaultDelta
	}

	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := make([]uint64, n) // float64 bits, for CAS-min
	inf := math.Float64bits(math.Inf(1))
	for i := range dist {
		dist[i] = inf
		res.Parent[i] = engines.NoParent
	}
	dist[root] = math.Float64bits(0)
	res.Parent[root] = int64(root)

	loadDist := func(v graph.VID) float64 {
		return math.Float64frombits(atomic.LoadUint64(&dist[v]))
	}
	// casMin lowers dist[v] to nd if it improves it, recording the
	// parent; returns true when it won.
	casMin := func(v graph.VID, nd float64, p graph.VID) bool {
		for {
			oldBits := atomic.LoadUint64(&dist[v])
			if math.Float64frombits(oldBits) <= nd {
				return false
			}
			if atomic.CompareAndSwapUint64(&dist[v], oldBits, math.Float64bits(nd)) {
				atomic.StoreInt64(&res.Parent[v], int64(p))
				return true
			}
		}
	}

	buckets := [][]graph.VID{{root}}
	relax := parallel.NewCounter(inst.m.Workers())
	// Per-chunk bucket-update queues replace the mutex-guarded merge
	// the relaxation passes used before: chunks collect their re-adds
	// and later-bucket insertions locally and the queues concatenate
	// them in chunk order — no lock, no contention, and the merge order
	// is a function of the chunk partition alone (membership stays
	// racy: this is the suite's chaotic CAS relaxation by design).
	reAddQ := parallel.NewChunkQueue[graph.VID]()
	laterQ := parallel.NewChunkQueue[[2]int64]() // (bucket, vertex)

	bucketOf := func(d float64) int { return int(d / delta) }
	put := func(bkts [][]graph.VID, idx int, v graph.VID) [][]graph.VID {
		for len(bkts) <= idx {
			bkts = append(bkts, nil)
		}
		bkts[idx] = append(bkts[idx], v)
		return bkts
	}
	const grain = 32 // GrainFixed base; adaptive resolves per pass

	for bi := 0; bi < len(buckets); bi++ {
		// Settle light edges of bucket bi to a fixed point.
		current := buckets[bi]
		buckets[bi] = nil
		var heavyFrontier []graph.VID
		for len(current) > 0 {
			// Polled per relaxation pass (bucket granularity), between
			// regions — the SSSP analogue of the per-level BFS check.
			if err := inst.checkCancel("SSSP"); err != nil {
				return nil, err
			}
			heavyFrontier = append(heavyFrontier, current...)
			g := inst.m.Grain(len(current), grain, 1)
			nchunks := parallel.NumChunks(len(current), g)
			reAddQ.Reset(nchunks)
			laterQ.Reset(nchunks)
			inst.m.ParallelForChunks(len(current), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
				var localRe []graph.VID
				var localLater [][2]int64
				var edges, wins int64
				for _, v := range current[lo:hi] {
					dv := loadDist(v)
					// Skip only entries settled into a LATER bucket:
					// an entry whose distance sits below bi (a heavy
					// relaxation requeued to bi+1) still needs its
					// light edges relaxed here.
					if bucketOf(dv) > bi { // stale entry
						continue
					}
					adj := inst.out.Neighbors(v)
					ws := inst.out.NeighborWeights(v)
					for i, u := range adj {
						wt := float64(ws[i])
						if wt > delta {
							continue // heavy edges handled after settling
						}
						edges++
						nd := dv + wt
						if casMin(u, nd, v) {
							wins++
							// b < bi (reachable only via a distance
							// already below the bucket) keeps settling
							// here — bucket b has already passed.
							if b := bucketOf(nd); b <= bi {
								localRe = append(localRe, u)
							} else {
								localLater = append(localLater, [2]int64{int64(b), int64(u)})
							}
						}
					}
				}
				reAddQ.Put(chunk, localRe)
				laterQ.Put(chunk, localLater)
				relax.Add(worker, edges)
				w.Charge(costRelax.Scale(float64(edges)))
				w.Charge(costClaim.Scale(float64(wins)))
				w.Charge(costBucketOp.Scale(float64(len(localRe) + len(localLater))))
			})
			for _, bv := range laterQ.Slice() {
				buckets = put(buckets, int(bv[0]), graph.VID(bv[1]))
			}
			current = reAddQ.AppendTo(nil)
		}
		// One pass of heavy edges from everything settled in bi.
		if len(heavyFrontier) > 0 {
			g := inst.m.Grain(len(heavyFrontier), grain, 1)
			laterQ.Reset(parallel.NumChunks(len(heavyFrontier), g))
			inst.m.ParallelForChunks(len(heavyFrontier), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
				var local [][2]int64
				var edges, wins int64
				for _, v := range heavyFrontier[lo:hi] {
					dv := loadDist(v)
					adj := inst.out.Neighbors(v)
					ws := inst.out.NeighborWeights(v)
					for i, u := range adj {
						wt := float64(ws[i])
						if wt <= delta {
							continue
						}
						edges++
						nd := dv + wt
						if casMin(u, nd, v) {
							wins++
							local = append(local, [2]int64{int64(bucketOf(nd)), int64(u)})
						}
					}
				}
				laterQ.Put(chunk, local)
				relax.Add(worker, edges)
				w.Charge(costRelax.Scale(float64(edges)))
				w.Charge(costClaim.Scale(float64(wins)))
				w.Charge(costBucketOp.Scale(float64(len(local))))
			})
			for _, bv := range laterQ.Slice() {
				if int(bv[0]) > bi {
					buckets = put(buckets, int(bv[0]), graph.VID(bv[1]))
				} else {
					// Rare: heavy relaxation landed in the current
					// bucket range due to float rounding; reprocess.
					buckets = put(buckets, bi+1, graph.VID(bv[1]))
				}
			}
		}
	}

	for v := 0; v < n; v++ {
		res.Dist[v] = math.Float64frombits(dist[v])
	}
	res.Relaxations = relax.Sum()
	return res, nil
}
