// Fuzz targets for the schedule-sensitive primitives PR 3 introduced:
// ChunkQueue, Bitmap, and ScanInt64. Each target checks a primitive
// against a trivially-correct oracle (serial prefix sum, a map-based
// set, a serially built concatenation) on adversarial inputs, under
// every scheduling policy and several worker counts. The seed corpus
// runs in plain `go test` (and therefore under `make race`); CI also
// runs each target with a bounded -fuzztime on a GOMAXPROCS matrix.
package parallel

import (
	"encoding/binary"
	"slices"
	"testing"

	"github.com/hpcl-repro/epg/internal/xrand"
)

// fuzzSchedules maps a fuzz byte onto a policy; NUMA appears twice so
// a random byte exercises the two-level path as often as the rest.
var fuzzSchedules = []Sched{Static, Dynamic, Steal, NUMA, NUMA}

// FuzzScanInt64 asserts ScanInt64 ≡ the serial exclusive prefix sum.
// data supplies a base pattern of int64 values; repeats tiles it past
// the serial cutoff so the parallel two-pass path (per-worker block
// sums combined in block order) is reachable, not just the serial
// fallback.
func FuzzScanInt64(f *testing.F) {
	p := NewPool(8) // shared: a per-execution pool would leak parked workers
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Add([]byte{1}, uint16(1), uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 3}, uint16(9000), uint8(4))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint16(2048), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, repeats uint16, workers uint8) {
		var pattern []int64
		for i := 0; i+8 <= len(data) && len(pattern) < 64; i += 8 {
			pattern = append(pattern, int64(binary.LittleEndian.Uint64(data[i:])))
		}
		if len(pattern) == 0 && len(data) > 0 {
			pattern = []int64{int64(data[0])}
		}
		n := len(pattern) * (int(repeats)%2049 + 1)
		xs := make([]int64, 0, n)
		for len(xs) < n {
			xs = append(xs, pattern...)
		}
		want := make([]int64, len(xs))
		var wantTotal int64
		for i, v := range xs {
			want[i] = wantTotal
			wantTotal += v // wraparound matches ScanInt64's int64 adds
		}
		got := slices.Clone(xs)
		total := ScanInt64(p, int(workers)%8+1, got)
		if total != wantTotal {
			t.Fatalf("total = %d, want %d (n=%d workers=%d)", total, wantTotal, len(xs), int(workers)%8+1)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("prefix sums differ from serial oracle (n=%d workers=%d)", len(xs), int(workers)%8+1)
		}
	})
}

// FuzzBitmapToSlice asserts Bitmap ≡ sorted-set semantics against a
// map oracle: concurrent Set under a fuzz-chosen policy, then
// ToSlice/Count/Test, then a fuzz-chosen ClearRange, then ToSlice
// again. Every index triple in data becomes one Set.
func FuzzBitmapToSlice(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 2}, uint32(64), uint8(1), uint8(0), uint32(0), uint32(3))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint32(70000), uint8(4), uint8(2), uint32(63), uint32(129))
	f.Add([]byte{0xff, 0xfe, 0xfd}, uint32(1), uint8(7), uint8(4), uint32(0), uint32(1))
	p := NewPool(8)
	f.Fuzz(func(t *testing.T, data []byte, nSeed uint32, workers, schedSeed uint8, clearLo, clearHi uint32) {
		n := int(nSeed)%200000 + 1
		idx := make([]int, 0, len(data)/3+1)
		for i := 0; i+3 <= len(data); i += 3 {
			v := int(data[i])<<16 | int(data[i+1])<<8 | int(data[i+2])
			idx = append(idx, v%n)
		}
		b := NewBitmap(n)
		oracle := make(map[int]bool, len(idx))
		for _, v := range idx {
			oracle[v] = true
		}
		w := int(workers)%8 + 1
		sched := fuzzSchedules[int(schedSeed)%len(fuzzSchedules)]
		// Concurrent, possibly duplicated sets: idempotent by contract.
		For(p, w, len(idx), 4, sched, func(lo, hi, chunk, worker int) {
			for i := lo; i < hi; i++ {
				b.Set(idx[i])
			}
		})
		checkBitmapOracle(t, b, oracle, p, w)

		lo, hi := int(clearLo)%(n+1), int(clearHi)%(n+1)
		if lo > hi {
			lo, hi = hi, lo
		}
		b.ClearRange(lo, hi)
		for v := range oracle {
			if v >= lo && v < hi {
				delete(oracle, v)
			}
		}
		checkBitmapOracle(t, b, oracle, p, w)
	})
}

// checkBitmapOracle compares every Bitmap observer against the map
// oracle: ToSlice (parallel and serial paths), Count, and Test.
func checkBitmapOracle(t *testing.T, b *Bitmap, oracle map[int]bool, p *Pool, workers int) {
	t.Helper()
	want := make([]uint32, 0, len(oracle))
	for v := range oracle {
		want = append(want, uint32(v))
	}
	slices.Sort(want)
	if got := b.ToSlice(p, workers, nil); !slices.Equal(got, want) {
		t.Fatalf("ToSlice(workers=%d) differs from sorted oracle: %d items vs %d", workers, len(got), len(want))
	}
	if got := b.appendSerial(nil); !slices.Equal(got, want) {
		t.Fatalf("serial ToSlice differs from sorted oracle")
	}
	if got := b.Count(); got != len(oracle) {
		t.Fatalf("Count = %d, want %d", got, len(oracle))
	}
	for i, v := range want {
		if !b.Test(int(v)) {
			t.Fatalf("Test(%d) = false for a set index", v)
		}
		// Probe the gap after each set index too.
		if g := int(v) + 1; g < b.Len() && i+1 < len(want) && want[i+1] != v+1 && b.Test(g) != oracle[g] {
			t.Fatalf("Test(%d) = %v, oracle %v", g, b.Test(g), oracle[g])
		}
	}
}

// fuzzChunkItems derives chunk c's pushed items as a pure function of
// (seed, chunk id) — the deterministic-producer contract under which
// ChunkQueue promises a schedule-independent drain.
func fuzzChunkItems(seed uint64, c int) []uint32 {
	r := xrand.New(seed ^ xrand.Mix64(uint64(c)+0xc0ffee))
	items := make([]uint32, r.Uint64()%23)
	for i := range items {
		items[i] = uint32(c)<<8 | uint32(r.Uint64()%256)
	}
	return items
}

// FuzzChunkQueueDrain asserts the ChunkQueue drain is a pure function
// of (chunk id, push order within chunk): whatever the policy, socket
// topology, worker count, or goroutine interleaving, the concatenated
// sequence equals the serially built reference, and a second
// concurrent run reproduces it exactly.
func FuzzChunkQueueDrain(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint8(16), uint8(2), uint8(3))
	f.Add(uint64(42), uint16(4097), uint8(1), uint8(0), uint8(0))
	f.Add(uint64(0xdead), uint16(33), uint8(63), uint8(7), uint8(4))
	p := NewPool(8)
	f.Fuzz(func(t *testing.T, seed uint64, nSeed uint16, grainSeed, workers, schedSeed uint8) {
		n := int(nSeed) % 5000
		grain := int(grainSeed)%64 + 1
		w := int(workers)%9 + 1
		sched := fuzzSchedules[int(schedSeed)%len(fuzzSchedules)]
		topo := Topology{Sockets: int(schedSeed)%4 + 1}
		nchunks := NumChunks(n, grain)

		var want []uint32
		for c := 0; c < nchunks; c++ {
			want = append(want, fuzzChunkItems(seed, c)...)
		}
		cq := NewChunkQueue[uint32]()
		for rep := 0; rep < 2; rep++ {
			cq.Reset(nchunks)
			ForTopo(p, w, n, grain, sched, topo, func(lo, hi, chunk, worker int) {
				cq.Put(chunk, fuzzChunkItems(seed, chunk))
			})
			if got := cq.Slice(); !slices.Equal(got, want) {
				t.Fatalf("rep=%d sched=%v workers=%d sockets=%d: drain differs from serial reference",
					rep, sched, w, topo.Sockets)
			}
			if cq.Len() != len(want) {
				t.Fatalf("Len = %d, want %d", cq.Len(), len(want))
			}
		}
	})
}
