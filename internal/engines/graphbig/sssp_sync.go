package graphbig

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// ssspCand is one candidate relaxation found during a gather round.
type ssspCand struct {
	u  graph.VID
	p  graph.VID
	nd float64
}

// ssspSync is the synchronous round-barrier variant of System G's
// relaxation (Engine.SyncSSSP): Bellman-Ford rounds over an active
// frontier, where each round gathers candidate updates against a
// snapshot of the distance array and applies them serially in chunk
// order — first strict improvement wins. The next frontier is the set
// of improved vertices in apply order, deduplicated by a round stamp.
//
// Every observable — distances, parents, relaxation counts, frontier
// composition, and modeled durations — is a pure function of the
// input, so this mode joins the determinism wall. The per-edge cost
// charged is unchanged from the chaotic variant: the modeled System G
// still pays its property-lock traffic per edge; what the barrier buys
// is reproducibility, at the price of a serial merge per round.
func (inst *Instance) ssspSync(root graph.VID) (*engines.SSSPResult, error) {
	n := inst.n
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := res.Dist // plain float64: sync mode never writes concurrently
	for i := range dist {
		dist[i] = math.Inf(1)
		res.Parent[i] = engines.NoParent
	}
	dist[root] = 0
	res.Parent[root] = int64(root)

	var relaxed int64
	active := []graph.VID{root}
	queued := make([]int32, n)
	round := int32(0)
	cands := parallel.NewChunkQueue[ssspCand]()
	for len(active) > 0 {
		round++
		g := inst.m.Grain(len(active), 32, 1)
		cands.Reset(parallel.NumChunks(len(active), g))
		inst.m.ParallelForChunks(len(active), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var local []ssspCand
			var edges int64
			for _, v := range active[lo:hi] {
				dv := dist[v]
				vp := &inst.vertices[v]
				for i, u := range vp.out {
					edges++
					nd := dv + float64(vp.w[i])
					if nd < dist[u] {
						local = append(local, ssspCand{u: u, p: v, nd: nd})
					}
				}
			}
			cands.Put(chunk, local)
			// Commutative sum of a deterministic edge set.
			atomic.AddInt64(&relaxed, edges)
			w.Charge(costSSSPEdge.Scale(float64(edges)))
			w.Charge(costPropTouch.Scale(float64(hi - lo)))
		})
		// Round barrier: serial apply in chunk order (the queue's
		// canonical concatenation).
		var next []graph.VID
		inst.m.Serial(func(w *simmachine.W) {
			ops := cands.Len()
			for _, c := range cands.Slice() {
				if c.nd >= dist[c.u] {
					continue // a chunk-earlier candidate won
				}
				dist[c.u] = c.nd
				res.Parent[c.u] = int64(c.p)
				if queued[c.u] != round {
					queued[c.u] = round
					next = append(next, c.u)
				}
			}
			w.Charge(costPropTouch.Scale(float64(ops)))
		})
		active = next
	}

	res.Relaxations = relaxed
	return res, nil
}
