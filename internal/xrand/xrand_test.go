package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		a, b := SplitMix64(&s1), SplitMix64(&s2)
		if a != b {
			t.Fatalf("iteration %d: %#x != %#x", i, a, b)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical C implementation seeded
	// with 1234567.
	s := uint64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		got := SplitMix64(&s)
		if got != w {
			t.Errorf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first values")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Uint64n(0)")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestExpPositive(t *testing.T) {
	r := New(8)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		e := r.Exp()
		if e < 0 {
			t.Fatalf("Exp returned negative %v", e)
		}
		sum += e
	}
	if mean := sum / n; math.Abs(mean-1.0) > 0.02 {
		t.Errorf("Exp mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	counts := map[int]int{}
	for _, x := range xs {
		counts[x]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		counts[x]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Errorf("element %d count off by %d", k, c)
		}
	}
}

// Property: Uint64n(n) < n for arbitrary n > 0 and arbitrary seeds.
func TestUint64nBoundProperty(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mix64 is injective on small sequential ranges (no
// collisions among 4096 consecutive inputs for arbitrary offsets).
func TestMix64NoLocalCollisions(t *testing.T) {
	f := func(offset uint64) bool {
		seen := make(map[uint64]struct{}, 4096)
		for i := uint64(0); i < 4096; i++ {
			v := Mix64(offset + i)
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
