package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	f := Summarize([]float64{1, 2, 3, 4, 5})
	if f.Min != 1 || f.Max != 5 || f.Median != 3 || f.Q1 != 2 || f.Q3 != 4 {
		t.Errorf("summary = %+v", f)
	}
	if f.N != 5 {
		t.Errorf("n = %d", f.N)
	}
	if f.IQR() != 2 {
		t.Errorf("iqr = %v", f.IQR())
	}
}

func TestSummarizeSingle(t *testing.T) {
	f := Summarize([]float64{7})
	if f.Min != 7 || f.Max != 7 || f.Median != 7 || f.Q1 != 7 || f.Q3 != 7 {
		t.Errorf("summary = %+v", f)
	}
}

func TestSummarizeUnsortedInputUntouched(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty input")
		}
	}()
	Summarize(nil)
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.001 {
		t.Errorf("sd = %v", sd)
	}
	if r := RelStdDev(xs); math.Abs(r-2.138/5) > 0.001 {
		t.Errorf("relsd = %v", r)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-sample sd should be 0")
	}
	if RelStdDev([]float64{0, 0}) != 0 {
		t.Error("zero-mean relsd should be 0")
	}
}

func TestScalingSeries(t *testing.T) {
	pts, err := Scaling(map[int]float64{1: 10, 2: 6, 4: 3.5, 8: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Sorted by threads.
	for i := 1; i < len(pts); i++ {
		if pts[i].Threads <= pts[i-1].Threads {
			t.Error("points not sorted")
		}
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Errorf("baseline point = %+v", pts[0])
	}
	if math.Abs(pts[1].Speedup-10.0/6) > 1e-12 {
		t.Errorf("speedup(2) = %v", pts[1].Speedup)
	}
	if math.Abs(pts[3].Efficiency-10.0/(8*2.5)) > 1e-12 {
		t.Errorf("efficiency(8) = %v", pts[3].Efficiency)
	}
}

func TestScalingErrors(t *testing.T) {
	if _, err := Scaling(map[int]float64{2: 5}); err == nil {
		t.Error("missing baseline accepted")
	}
	if _, err := Scaling(map[int]float64{1: 0}); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := Scaling(map[int]float64{1: 1, 4: -2}); err == nil {
		t.Error("negative time accepted")
	}
}

// Property: min <= q1 <= median <= q3 <= max for arbitrary samples.
func TestFiveNumOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: efficiency = speedup / threads.
func TestEfficiencyIdentityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		times := map[int]float64{1: 1.0}
		for _, n := range []int{2, 4, 8, 16} {
			times[n] = 1.0 / (1 + float64(seed%7)) * float64(n) / float64(n+int(seed%3))
		}
		pts, err := Scaling(times)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if math.Abs(p.Efficiency-p.Speedup/float64(p.Threads)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
