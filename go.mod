module github.com/hpcl-repro/epg

go 1.23
